(* End-to-end integrity: the corruption and torn-write fault classes and
   their defenses. The checksum fence must reject every single-bit wire
   error, the doublewrite WAL must recover losslessly from a tear at any
   byte of the tail record, and whole phases under corruption and torn
   crashes must still compute bit-identical fault-free results. *)

open Dpa_sim

(* --- wire frames: checksum avalanche ------------------------------------- *)

let test_frame_seal_verify () =
  let fr = Dpa_msg.Wire.frame ~src:1 ~dst:2 ~seq:77 ~inc:3 ~bytes:4096 in
  Alcotest.(check bool) "unsealed frame rejected" false (Dpa_msg.Wire.verify fr);
  Dpa_msg.Wire.seal fr;
  Alcotest.(check bool) "sealed frame verifies" true (Dpa_msg.Wire.verify fr)

let test_frame_avalanche () =
  (* CRC-32 detects every single-bit error, so there must be no bit in
     the frame — header, payload image or checksum trailer itself — whose
     flip survives verification. Exhaustive over all positions. *)
  let fr = Dpa_msg.Wire.frame ~src:5 ~dst:0 ~seq:123_456 ~inc:2 ~bytes:65_536 in
  Dpa_msg.Wire.seal fr;
  let bits = Dpa_msg.Wire.bits fr in
  Alcotest.(check bool) "frame has bits" true (bits > 0);
  for k = 0 to bits - 1 do
    Dpa_msg.Wire.flip_bit fr k;
    if Dpa_msg.Wire.verify fr then
      Alcotest.failf "single-bit flip at bit %d of %d accepted" k bits;
    Dpa_msg.Wire.flip_bit fr k
  done;
  Alcotest.(check bool) "restored frame verifies again" true
    (Dpa_msg.Wire.verify fr)

let frame_gen =
  QCheck.Gen.(
    let* src = int_range 0 63 in
    let* dst = int_range 0 63 in
    let* seq = int_range 0 1_000_000 in
    let* inc = int_range 0 9 in
    let* bytes = int_range 1 1_000_000 in
    let* bit = int_range 0 10_000 in
    return (src, dst, seq, inc, bytes, bit))

let qcheck_frame_rejects_any_flip =
  QCheck.Test.make ~name:"any single-bit flip fails frame verification"
    ~count:300 (QCheck.make frame_gen) (fun (src, dst, seq, inc, bytes, bit) ->
      let fr = Dpa_msg.Wire.frame ~src ~dst ~seq ~inc ~bytes in
      Dpa_msg.Wire.seal fr;
      Dpa_msg.Wire.flip_bit fr bit;
      not (Dpa_msg.Wire.verify fr))

(* --- WAL: torn-tail recovery at every byte boundary ----------------------- *)

let nrecords = 4

let payload i = Bytes.of_string (Printf.sprintf "record-%02d-payload" i)

let wal_with n =
  let w = Dpa.Wal.create () in
  for i = 0 to n - 1 do
    Dpa.Wal.append w (payload i)
  done;
  w

let expected n = List.init n payload

(* The tail record's full on-log image: length prefix + payload + CRC. *)
let rec_len = 4 + Bytes.length (payload 0) + 4

let check_lossless ~what w =
  let r = Dpa.Wal.scan w in
  if r.Dpa.Wal.records <> expected nrecords then
    Alcotest.failf "%s: records lost or mangled after scan" what;
  Alcotest.(check int)
    (what ^ ": record count restored")
    nrecords (Dpa.Wal.count w);
  (* Idempotent: a second scan finds a healthy log. *)
  let r2 = Dpa.Wal.scan w in
  Alcotest.(check int) (what ^ ": second scan truncates nothing") 0
    r2.Dpa.Wal.truncated;
  Alcotest.(check int) (what ^ ": second scan repairs nothing") 0
    r2.Dpa.Wal.repaired

let test_torn_tail_every_truncation () =
  (* Truncate the tail record back by every possible byte count (1 byte up
     to its whole image): the doublewrite slot must restore it bit for bit
     every time. *)
  for pos = 0 to rec_len - 1 do
    let w = wal_with nrecords in
    Alcotest.(check bool) "tear landed" true
      (Dpa.Wal.tear w ~slot:false ~flip:false ~pos);
    check_lossless ~what:(Printf.sprintf "tail truncated at byte %d" pos) w
  done

let test_torn_tail_every_bit_flip () =
  (* Flip every bit of the tail record's image in turn — length field,
     payload and CRC alike — and recover. *)
  for pos = 0 to (8 * rec_len) - 1 do
    let w = wal_with nrecords in
    Alcotest.(check bool) "tear landed" true
      (Dpa.Wal.tear w ~slot:false ~flip:true ~pos);
    check_lossless ~what:(Printf.sprintf "tail bit %d flipped" pos) w
  done

let test_torn_slot_every_position () =
  (* The tear may hit the doublewrite slot instead: the main image is then
     intact, so recovery must keep every record and never "repair" a
     damaged slot back over the good tail. *)
  for pos = 0 to (8 * rec_len) - 1 do
    let w = wal_with nrecords in
    Alcotest.(check bool) "tear landed" true
      (Dpa.Wal.tear w ~slot:true ~flip:true ~pos);
    let r = Dpa.Wal.scan w in
    Alcotest.(check int)
      (Printf.sprintf "slot bit %d: nothing truncated" pos)
      0 r.Dpa.Wal.truncated;
    check_lossless ~what:(Printf.sprintf "slot bit %d flipped" pos) w
  done;
  for pos = 0 to rec_len - 1 do
    let w = wal_with nrecords in
    Alcotest.(check bool) "tear landed" true
      (Dpa.Wal.tear w ~slot:true ~flip:false ~pos);
    check_lossless ~what:(Printf.sprintf "slot truncated at byte %d" pos) w
  done

let test_tear_on_empty_log_absorbed () =
  let w = Dpa.Wal.create () in
  Alcotest.(check bool) "empty log absorbs the tear" false
    (Dpa.Wal.tear w ~slot:false ~flip:true ~pos:17);
  Alcotest.(check bool) "empty slot absorbs the tear" false
    (Dpa.Wal.tear w ~slot:true ~flip:false ~pos:17);
  let r = Dpa.Wal.scan w in
  Alcotest.(check int) "nothing truncated" 0 r.Dpa.Wal.truncated;
  Alcotest.(check int) "nothing repaired" 0 r.Dpa.Wal.repaired

(* --- fault plan: corruption draws are an independent stream --------------- *)

let judge_stream plan =
  List.init 200 (fun i ->
      Fault.judge plan ~now:(i * 1000)
        ~arrival:((i * 1000) + 500)
        ~src:(i mod 4)
        ~dst:((i + 1) mod 4)
        ~transfer_ns:300)

let test_corrupt_draws_independent () =
  (* The verdict stream (drop/dup/delay) must be bit-identical whether or
     not corruption draws are interleaved with it — corruption has its own
     seeded RNG, so [corrupt=0] replays legacy schedules unchanged and
     turning corruption on never perturbs the loss schedule. *)
  let spec = { Fault.heavy with Fault.corrupt = 0. } in
  let reference = judge_stream (Fault.make ~seed:77 spec ~nodes:4) in
  let corrupting =
    Fault.make ~seed:77 { spec with Fault.corrupt = 0.4 } ~nodes:4
  in
  let drawn = ref 0 in
  let verdicts =
    List.init 200 (fun i ->
        (match Fault.corrupt_copy corrupting with
        | Some _ -> incr drawn
        | None -> ());
        Fault.judge corrupting ~now:(i * 1000)
          ~arrival:((i * 1000) + 500)
          ~src:(i mod 4)
          ~dst:((i + 1) mod 4)
          ~transfer_ns:300)
  in
  Alcotest.(check bool) "corruption actually drawn" true (!drawn > 0);
  Alcotest.(check int) "corruptions counted" !drawn
    (Fault.corruptions corrupting);
  Alcotest.(check bool) "judge stream unperturbed by corruption draws" true
    (verdicts = reference);
  (* And a zero rate never touches the corruption RNG at all. *)
  let off = Fault.make ~seed:77 spec ~nodes:4 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "corrupt=0 draws nothing" true
      (Fault.corrupt_copy off = None)
  done;
  Alcotest.(check int) "corrupt=0 counts nothing" 0 (Fault.corruptions off)

(* --- transport: exactly-once under corruption ----------------------------- *)

let test_exactly_once_under_corruption () =
  (* Corrupted copies are fenced wire-silently (no handler, no ack); the
     retransmission machinery must still deliver every message exactly
     once, and the per-node drop attribution must sum to the total. *)
  let spec =
    { Fault.none with Fault.drop = 0.2; dup = 0.2; corrupt = 0.25 }
  in
  let engine =
    Engine.create (Machine.make ~nodes:3 ~faults:spec ~fault_seed:42 ())
  in
  let m = Engine.machine engine in
  let n = 60 in
  let count = Array.make n 0 in
  for i = 0 to n - 1 do
    let src = Engine.node engine (i mod 2) in
    Dpa_msg.Am.send engine ~src ~dst:2
      ~bytes:(m.Machine.msg_header_bytes + 32) (fun _ ->
        count.(i) <- count.(i) + 1)
  done;
  Engine.run engine;
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "handler %d runs once" i) 1 c)
    count;
  Alcotest.(check int) "drained" 0 (Dpa_msg.Am.in_flight engine);
  match Dpa_msg.Am.stats engine with
  | None -> Alcotest.fail "protocol state missing"
  | Some s ->
    Alcotest.(check bool) "corrupted copies were fenced" true
      (s.Dpa_msg.Am.corrupt_dropped > 0);
    Alcotest.(check bool) "fenced copies forced retransmits" true
      (s.Dpa_msg.Am.retransmits > 0);
    Alcotest.(check int) "per-node attribution sums to the total"
      s.Dpa_msg.Am.corrupt_dropped
      (Array.fold_left ( + ) 0 (Dpa_msg.Am.corrupt_dropped_per_node engine))

(* --- whole phases under the integrity fault classes ----------------------- *)

(* Same deterministic runner test_fault.ml uses: integer-valued heap
   floats, so per-node sums are exact and order-independent — equality
   with the fault-free run means nothing was lost, duplicated or
   silently accepted corrupt. *)
let run_dpa ?faults ?(fault_seed = 0x5EED) spec =
  let nnodes, _, nitems, _ = spec in
  let heaps, item_reads = Test_properties.build_phase spec in
  let sums = Array.make nnodes 0. in
  let items node =
    Array.init nitems (fun item ->
        fun ctx ->
          List.iter
            (fun p ->
              Dpa.Runtime.read ctx p (fun ctx view ->
                  Dpa.Runtime.charge ctx 100;
                  sums.(Dpa.Runtime.node_id ctx) <-
                    sums.(Dpa.Runtime.node_id ctx)
                    +. Dpa_heap.Heap.view_float (Dpa.Runtime.heaps ctx) view 0))
            (item_reads node item))
  in
  let engine =
    Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ())
  in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:3 ~agg_max:4 ())
      ~items
  in
  (sums, stats, Engine.elapsed engine, Dpa_msg.Am.stats engine)

let corrupt_phase_gen =
  QCheck.Gen.(
    pair Test_properties.phase_gen
      (pair (float_range 0.05 0.4) (int_range 0 1000)))

let qcheck_corruption_preserves_sums =
  QCheck.Test.make
    ~name:"DPA phase under wire corruption computes fault-free sums" ~count:25
    (QCheck.make corrupt_phase_gen)
    (fun (phase, (corrupt, seed)) ->
      let reference, _, _, _ = run_dpa phase in
      let spec = { Fault.none with Fault.corrupt; drop = 0.05 } in
      let sums, _, _, am = run_dpa ~faults:spec ~fault_seed:seed phase in
      reference = sums
      && match am with Some s -> s.Dpa_msg.Am.in_flight = 0 | None -> true)

let corrupt_replay_phase =
  (4, 8, 10, List.init 30 (fun i -> ((i * 7) mod 4, (i * 3) mod 8)))

let test_fixed_seed_corruption_replay () =
  (* The corruption schedule is part of the seeded plan: the same seed must
     replay the identical run — same sums, same stats, same clock, same
     protocol counters (corrupt_dropped included). *)
  let spec = { Fault.heavy with Fault.corrupt = 0.2 } in
  let s1, st1, e1, am1 = run_dpa ~faults:spec ~fault_seed:9 corrupt_replay_phase in
  let s2, st2, e2, am2 = run_dpa ~faults:spec ~fault_seed:9 corrupt_replay_phase in
  Alcotest.(check bool) "sums replay" true (s1 = s2);
  Alcotest.(check bool) "stats replay" true (st1 = st2);
  Alcotest.(check int) "clock replays" e1 e2;
  Alcotest.(check bool) "protocol counters replay" true (am1 = am2);
  (match am1 with
  | None -> Alcotest.fail "protocol state missing"
  | Some s ->
    Alcotest.(check bool) "corruption actually fired" true
      (s.Dpa_msg.Am.corrupt_dropped > 0));
  let reference, _, _, _ = run_dpa corrupt_replay_phase in
  Alcotest.(check bool) "corrupted run matches fault-free sums" true
    (reference = s1)

let test_caching_baseline_fenced () =
  (* The caching baseline's fetch path rides the same transport, so it
     inherits the checksum fence: corrupted copies must be dropped and
     re-sent, and the sums must match the fault-free run. *)
  let phase = corrupt_replay_phase in
  let dropped = ref 0 in
  let run ?faults ?(fault_seed = 0x5EED) () =
    Test_properties.run_variant
      (module Dpa_baselines.Caching)
      (fun heaps items ->
        let nnodes, _, _, _ = phase in
        let engine =
          Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ())
        in
        ignore
          (Dpa_baselines.Caching.run_phase ~engine ~heaps ~capacity:7 ~items ());
        match Dpa_msg.Am.stats engine with
        | Some s -> dropped := s.Dpa_msg.Am.corrupt_dropped
        | None -> ())
      phase
  in
  let reference = run () in
  let spec = { Fault.none with Fault.drop = 0.05; corrupt = 0.25 } in
  let corrupted = run ~faults:spec ~fault_seed:21 () in
  Alcotest.(check bool) "caching sums survive corruption" true
    (reference = corrupted);
  Alcotest.(check bool) "fetch traffic was actually fenced" true (!dropped > 0)

(* --- torn WAL writes across crash-restarts -------------------------------- *)

(* An accumulate-heavy phase: remote updates stream from the first strip,
   so the update-WAL and applied-batch journal have live tails whenever a
   crash lands. Integer increments keep the reduction exact. *)
let run_accumulate ?faults ?(fault_seed = 0x5EED) () =
  let nnodes = 8 in
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let counters =
    Array.init (2 * nnodes) (fun i ->
        Dpa_heap.Heap.alloc heaps.(i mod nnodes) ~floats:(Array.make 2 0.)
          ~ptrs:[||])
  in
  let nctr = Array.length counters in
  let items node =
    Array.init 64 (fun i ->
        fun ctx ->
          Dpa.Runtime.charge ctx 2_000;
          Dpa.Runtime.accumulate ctx
            counters.((node + (3 * i)) mod nctr)
            ~idx:(i mod 2)
            (float_of_int ((node * 64) + i + 1)))
  in
  let engine =
    Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ())
  in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:8 ())
      ~items
  in
  let vals =
    Array.map
      (fun p ->
        Array.copy (Dpa_heap.Heap.deref heaps p).Dpa_heap.Obj_repr.floats)
      counters
  in
  (vals, stats, Engine.elapsed engine, Dpa_msg.Am.stats engine)

let torn_spec ~elapsed extra =
  {
    extra with
    Fault.crashes = 1;
    crash_ns = max 1_000 (elapsed / 8);
    outage_horizon_ns = max 1_000 (elapsed / 2);
    torn_wal = 1.;
  }

let test_torn_wal_recovery_end_to_end () =
  (* Every crash tears a durable-log tail (torn-wal=1); the crash-anchored
     scan must truncate the damage, repair from the doublewrite slot, and
     the restart re-drive must finish the reduction bit for bit. *)
  let reference, _, elapsed, _ = run_accumulate () in
  let vals, stats, _, am =
    run_accumulate ~faults:(torn_spec ~elapsed Fault.none) ~fault_seed:31 ()
  in
  Alcotest.(check bool) "counters bit-identical across torn crashes" true
    (reference = vals);
  Alcotest.(check int) "every node crashed once" 8 stats.Dpa.Dpa_stats.crashes;
  Alcotest.(check bool) "tears actually damaged live tails" true
    (stats.Dpa.Dpa_stats.wal_truncated > 0
    || stats.Dpa.Dpa_stats.wal_repaired > 0);
  match am with
  | None -> Alcotest.fail "protocol state missing"
  | Some s ->
    Alcotest.(check int) "quiescent: no in-flight envelopes" 0
      s.Dpa_msg.Am.in_flight

let test_torn_wal_under_full_cocktail () =
  (* The heavy preset plus corruption plus torn crashes — the a14 matrix's
     worst cell, reduced: the reduction must still be exact. *)
  let reference, _, elapsed, _ = run_accumulate () in
  let spec =
    torn_spec ~elapsed { Fault.heavy with Fault.corrupt = 0.1 }
  in
  let vals, stats, _, am = run_accumulate ~faults:spec ~fault_seed:47 () in
  Alcotest.(check bool) "counters bit-identical under the full cocktail" true
    (reference = vals);
  Alcotest.(check int) "every node crashed once" 8 stats.Dpa.Dpa_stats.crashes;
  (match am with
  | None -> Alcotest.fail "protocol state missing"
  | Some s ->
    Alcotest.(check bool) "corruption fired" true
      (s.Dpa_msg.Am.corrupt_dropped > 0);
    Alcotest.(check int) "quiescent" 0 s.Dpa_msg.Am.in_flight);
  (* Replay: the whole cocktail is seeded. *)
  let vals2, stats2, _, _ = run_accumulate ~faults:spec ~fault_seed:47 () in
  Alcotest.(check bool) "cocktail replays bit-identically" true
    (vals = vals2 && stats = stats2)

let suites =
  [
    ( "wire integrity",
      [
        Alcotest.test_case "seal then verify" `Quick test_frame_seal_verify;
        Alcotest.test_case "every single-bit flip rejected" `Quick
          test_frame_avalanche;
        QCheck_alcotest.to_alcotest qcheck_frame_rejects_any_flip;
      ] );
    ( "wal integrity",
      [
        Alcotest.test_case "torn tail: every truncation recovers" `Quick
          test_torn_tail_every_truncation;
        Alcotest.test_case "torn tail: every bit flip recovers" `Quick
          test_torn_tail_every_bit_flip;
        Alcotest.test_case "torn slot: every position recovers" `Quick
          test_torn_slot_every_position;
        Alcotest.test_case "tear on empty log absorbed" `Quick
          test_tear_on_empty_log_absorbed;
      ] );
    ( "corruption fencing",
      [
        Alcotest.test_case "corruption draws are an independent stream" `Quick
          test_corrupt_draws_independent;
        Alcotest.test_case "exactly-once under corruption" `Quick
          test_exactly_once_under_corruption;
        Alcotest.test_case "fixed seed replays the corruption schedule" `Quick
          test_fixed_seed_corruption_replay;
        Alcotest.test_case "caching baseline inherits the fence" `Quick
          test_caching_baseline_fenced;
        QCheck_alcotest.to_alcotest qcheck_corruption_preserves_sums;
      ] );
    ( "torn writes",
      [
        Alcotest.test_case "torn WAL recovery end to end" `Quick
          test_torn_wal_recovery_end_to_end;
        Alcotest.test_case "full fault cocktail stays exact" `Quick
          test_torn_wal_under_full_cocktail;
      ] );
  ]

(* Tests of the critical-path analyzer (lib/obs/critpath.ml) over the
   happens-before graph: hand-built DAGs with known longest paths and exact
   bucket decompositions, the path-eligibility and window-lifecycle rules,
   and qcheck invariants over real BH and EM3D runs — the segments always
   sum to the path length and 0 <= max span <= path <= phase wall, with and
   without faults. *)

module Sink = Dpa_obs.Sink
module Causal = Dpa_obs.Causal
module Critpath = Dpa_obs.Critpath
module Json = Dpa_obs.Json

let seg segs name = match List.assoc_opt name segs with Some v -> v | None -> 0

let sum_segments segs = List.fold_left (fun acc (_, v) -> acc + v) 0 segs

(* Record a node in [c] and return its id. *)
let mk c ?(on_path = true) ~s ~name ~ts ~dur () =
  let id = Causal.fresh c in
  Causal.node ~seg:s ~on_path c ~id ~name ~node:0 ~ts ~dur;
  id

(* Build a window with [build], close it as one labeled phase, and return
   the single analyzed instance. *)
let analyze ?(wall = 0) ?(actual = 0) ?(bound = 0) build =
  let c = Causal.create () in
  build c;
  let wall =
    if wall > 0 then wall
    else
      List.fold_left
        (fun acc n -> max acc (n.Causal.cn_ts + n.Causal.cn_dur))
        0 (Causal.window_nodes c)
  in
  Causal.set_meta c ~label:"t" ~wall_ns:wall ~opt_actual:actual ~opt_bound:bound;
  Critpath.at_barrier c;
  match Causal.results c with
  | [ i ] -> i
  | l -> Alcotest.failf "expected one instance, got %d" (List.length l)

let check_decomposition i expect =
  List.iter
    (fun name ->
      Alcotest.(check int)
        (Printf.sprintf "bucket %s" name)
        (seg expect name) (seg i.Causal.i_segments name))
    Critpath.buckets;
  Alcotest.(check int) "segments sum to path" i.Causal.i_path_ns
    (sum_segments i.Causal.i_segments)

(* Fork/join: a quantum fans two requests out to two owners; the longer
   branch (F2 -> S2 -> R2) plus the delivery gap before the wake and the
   scheduling gap before the join quantum is the critical path. *)
let test_fork_join () =
  let i =
    analyze (fun c ->
        let a = mk c ~s:Causal.Compute ~name:"quantum" ~ts:0 ~dur:10 () in
        let f1 = mk c ~s:Causal.Wire ~name:"flight" ~ts:10 ~dur:5 () in
        let f2 = mk c ~s:Causal.Wire ~name:"flight" ~ts:10 ~dur:8 () in
        Causal.edge c ~kind:Causal.Send ~parent:a ~child:f1;
        Causal.edge c ~kind:Causal.Send ~parent:a ~child:f2;
        let s1 = mk c ~s:Causal.Compute ~name:"service" ~ts:20 ~dur:4 () in
        let s2 = mk c ~s:Causal.Compute ~name:"service" ~ts:18 ~dur:6 () in
        Causal.edge c ~kind:Causal.Deliver ~parent:f1 ~child:s1;
        Causal.edge c ~kind:Causal.Deliver ~parent:f2 ~child:s2;
        let r1 = mk c ~s:Causal.Wire ~name:"flight" ~ts:24 ~dur:5 () in
        let r2 = mk c ~s:Causal.Wire ~name:"flight" ~ts:24 ~dur:10 () in
        Causal.edge c ~kind:Causal.Send ~parent:s1 ~child:r1;
        Causal.edge c ~kind:Causal.Send ~parent:s2 ~child:r2;
        let w = mk c ~s:Causal.Other ~name:"wake" ~ts:40 ~dur:0 () in
        Causal.edge c ~kind:Causal.Deliver ~parent:r2 ~child:w;
        let b = mk c ~s:Causal.Compute ~name:"quantum" ~ts:41 ~dur:9 () in
        Causal.edge c ~kind:Causal.Seq ~parent:a ~child:b;
        Causal.edge c ~kind:Causal.Wake ~parent:w ~child:b)
  in
  Alcotest.(check int) "path" 50 i.Causal.i_path_ns;
  Alcotest.(check int) "nodes on path" 6 i.Causal.i_path_nodes;
  Alcotest.(check int) "max span" 10 i.Causal.i_max_span_ns;
  Alcotest.(check int) "dag nodes" 9 i.Causal.i_dag_nodes;
  Alcotest.(check int) "dag edges" 9 i.Causal.i_dag_edges;
  check_decomposition i
    [ ("compute", 25); ("wire", 18); ("owner_queue", 6); ("align_wait", 1) ]

(* Retransmit chain: the first attempt is dropped (nothing recorded), the
   timeout gap up to the re-issue marker and the retransmitted flight are
   both charged to the retransmit bucket. *)
let test_retransmit_chain () =
  let i =
    analyze (fun c ->
        let a = mk c ~s:Causal.Compute ~name:"quantum" ~ts:0 ~dur:10 () in
        let m = mk c ~s:Causal.Retransmit ~name:"rt_retry" ~ts:30 ~dur:0 () in
        Causal.edge c ~kind:Causal.Retry ~parent:a ~child:m;
        let f = mk c ~s:Causal.Retransmit ~name:"flight" ~ts:30 ~dur:5 () in
        Causal.edge c ~kind:Causal.Retry ~parent:m ~child:f;
        let w = mk c ~s:Causal.Other ~name:"wake" ~ts:35 ~dur:0 () in
        Causal.edge c ~kind:Causal.Deliver ~parent:f ~child:w;
        let b = mk c ~s:Causal.Compute ~name:"quantum" ~ts:35 ~dur:5 () in
        Causal.edge c ~kind:Causal.Seq ~parent:a ~child:b;
        Causal.edge c ~kind:Causal.Wake ~parent:w ~child:b)
  in
  Alcotest.(check int) "path" 40 i.Causal.i_path_ns;
  Alcotest.(check int) "nodes on path" 5 i.Causal.i_path_nodes;
  check_decomposition i [ ("compute", 15); ("retransmit", 25) ]

(* Crash-refetch chain: the gap between the last pre-crash activity and the
   restart marker is the outage; it and nothing else lands in the refetch
   bucket, while the re-fetch round-trip itself is ordinary wire/compute. *)
let test_refetch_chain () =
  let i =
    analyze (fun c ->
        let a = mk c ~s:Causal.Compute ~name:"quantum" ~ts:0 ~dur:10 () in
        let r = mk c ~s:Causal.Refetch ~name:"restart" ~ts:50 ~dur:0 () in
        Causal.edge c ~kind:Causal.Refetch_start ~parent:a ~child:r;
        let f = mk c ~s:Causal.Wire ~name:"flight" ~ts:50 ~dur:5 () in
        Causal.edge c ~kind:Causal.Send ~parent:r ~child:f;
        let s = mk c ~s:Causal.Compute ~name:"service" ~ts:55 ~dur:5 () in
        Causal.edge c ~kind:Causal.Deliver ~parent:f ~child:s;
        let rf = mk c ~s:Causal.Wire ~name:"flight" ~ts:60 ~dur:5 () in
        Causal.edge c ~kind:Causal.Send ~parent:s ~child:rf;
        let w = mk c ~s:Causal.Other ~name:"wake" ~ts:65 ~dur:0 () in
        Causal.edge c ~kind:Causal.Deliver ~parent:rf ~child:w;
        let b = mk c ~s:Causal.Compute ~name:"quantum" ~ts:65 ~dur:10 () in
        Causal.edge c ~kind:Causal.Seq ~parent:r ~child:b;
        Causal.edge c ~kind:Causal.Wake ~parent:w ~child:b)
  in
  Alcotest.(check int) "path" 75 i.Causal.i_path_ns;
  Alcotest.(check int) "nodes on path" 7 i.Causal.i_path_nodes;
  check_decomposition i [ ("compute", 25); ("wire", 10); ("refetch", 40) ]

(* Acks are recorded but path-ineligible: a late ack flight must not
   become the tail of the critical path. *)
let test_ack_not_on_path () =
  let i =
    analyze ~wall:200 (fun c ->
        let a = mk c ~s:Causal.Compute ~name:"quantum" ~ts:0 ~dur:10 () in
        let k =
          mk c ~on_path:false ~s:Causal.Wire ~name:"flight" ~ts:5 ~dur:150 ()
        in
        Causal.edge c ~kind:Causal.Ack ~parent:a ~child:k)
  in
  Alcotest.(check int) "path ends at the quantum" 10 i.Causal.i_path_ns;
  Alcotest.(check int) "single node" 1 i.Causal.i_path_nodes;
  (* The ineligible ack still counts in the DAG size, but not in the max
     span — eligibility is what keeps max span <= path. *)
  Alcotest.(check int) "dag nodes" 2 i.Causal.i_dag_nodes;
  Alcotest.(check int) "max span skips the ack" 10 i.Causal.i_max_span_ns;
  check_decomposition i [ ("compute", 10) ]

(* Unlabeled windows (baseline runtimes never call set_meta) are dropped
   unanalyzed, and the window is cleared either way. *)
let test_unlabeled_window_discarded () =
  let c = Causal.create () in
  let a = mk c ~s:Causal.Compute ~name:"quantum" ~ts:0 ~dur:10 () in
  let f = mk c ~s:Causal.Wire ~name:"flight" ~ts:10 ~dur:5 () in
  Causal.edge c ~kind:Causal.Send ~parent:a ~child:f;
  Critpath.at_barrier c;
  Alcotest.(check bool) "no instance" true (Causal.results c = []);
  Alcotest.(check bool) "window cleared" true (Causal.window_size c = (0, 0))

(* Span ids survive window resets: the allocator is never rewound, so a
   retransmission in a later window can still name its original parent. *)
let test_id_stability_across_windows () =
  let c = Causal.create () in
  let a = mk c ~s:Causal.Compute ~name:"quantum" ~ts:0 ~dur:1 () in
  Critpath.at_barrier c;
  let b = Causal.fresh c in
  Alcotest.(check bool) "monotone across barrier" true (b > a);
  Causal.set_current c a;
  Causal.reset_window c;
  Alcotest.(check int) "cursor cleared by reset" (-1) (Causal.current c);
  Alcotest.(check bool) "monotone across reset" true (Causal.fresh c > b)

let test_ratio () =
  Alcotest.(check (float 0.)) "both zero" 1.0 (Critpath.ratio ~actual:0 ~bound:0);
  Alcotest.(check (float 0.)) "bound zero" infinity
    (Critpath.ratio ~actual:5 ~bound:0);
  Alcotest.(check (float 1e-12)) "ordinary" 1.5
    (Critpath.ratio ~actual:150 ~bound:100)

(* The report JSON aggregates instances per label and exposes nphases. *)
let test_report_json () =
  let c = Causal.create () in
  let one ts =
    let a = mk c ~s:Causal.Compute ~name:"quantum" ~ts ~dur:10 () in
    ignore a;
    Causal.set_meta c ~label:"p" ~wall_ns:(ts + 10) ~opt_actual:120
      ~opt_bound:100;
    Critpath.at_barrier c
  in
  one 0;
  one 5;
  let j = Critpath.report_json c in
  (match Json.member "nphases" j with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "nphases <> 2");
  (match Json.member "phases" j with
  | Some (Json.List [ _; _ ]) -> ()
  | _ -> Alcotest.fail "phases list wrong");
  match Json.member "summary" j with
  | Some (Json.Obj [ ("p", row) ]) -> (
    match Json.member "opt_ratio" row with
    | Some (Json.Float r) -> Alcotest.(check (float 1e-9)) "ratio" 1.2 r
    | _ -> Alcotest.fail "summary ratio missing")
  | _ -> Alcotest.fail "summary missing label p"

(* --- invariants over real runs ----------------------------------------- *)

let check_instances ~what instances =
  if instances = [] then
    QCheck.Test.fail_reportf "%s: no analyzed phases" what;
  List.iter
    (fun i ->
      let sum = sum_segments i.Causal.i_segments in
      if sum <> i.Causal.i_path_ns then
        QCheck.Test.fail_reportf "%s/%s: segments sum %d <> path %d" what
          i.Causal.i_label sum i.Causal.i_path_ns;
      if
        not
          (0 <= i.Causal.i_max_span_ns
          && i.Causal.i_max_span_ns <= i.Causal.i_path_ns
          && i.Causal.i_path_ns <= i.Causal.i_wall_ns)
      then
        QCheck.Test.fail_reportf "%s/%s: span %d / path %d / wall %d disordered"
          what i.Causal.i_label i.Causal.i_max_span_ns i.Causal.i_path_ns
          i.Causal.i_wall_ns;
      if not (i.Causal.i_opt_actual >= i.Causal.i_opt_bound) then
        QCheck.Test.fail_reportf "%s/%s: actual %d < bound %d" what
          i.Causal.i_label i.Causal.i_opt_actual i.Causal.i_opt_bound;
      if i.Causal.i_opt_bound < 0 then
        QCheck.Test.fail_reportf "%s/%s: negative bound" what i.Causal.i_label)
    instances;
  true

let with_causal_sink f =
  let sink = Sink.create () in
  let c = Causal.create () in
  Sink.set_causal sink (Some c);
  let r = f sink in
  (c, r)

let run_bh ?fault ~nbodies ~nnodes ~strip sink =
  let bodies = Dpa_bh.Plummer.generate ~n:nbodies ~seed:29 in
  let octree = Dpa_bh.Octree.build bodies in
  let tree = Dpa_bh.Bh_global.distribute octree ~nnodes in
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:nnodes) in
  Dpa_sim.Engine.set_sink engine sink;
  (match fault with
  | Some spec ->
    Dpa_sim.Engine.set_fault engine
      (Some (Dpa_sim.Fault.make ~seed:41 spec ~nodes:nnodes))
  | None -> ());
  Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
    ~params:Dpa_bh.Bh_force.default_params
    (Dpa_baselines.Variant.dpa ~strip_size:strip ())

let qcheck_bh_invariants =
  QCheck.Test.make ~count:5 ~name:"bh: max span <= critical path <= wall"
    QCheck.(
      triple (int_range 48 160) (int_range 2 4) (int_range 4 24))
    (fun (nbodies, nnodes, strip) ->
      let c, _ =
        with_causal_sink (fun s -> run_bh ~nbodies ~nnodes ~strip (Some s))
      in
      check_instances ~what:"bh" (Causal.results c))

let test_bh_faulted_invariants () =
  let spec =
    match Dpa_sim.Fault.spec_of_string "heavy,crashes=2" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let c, _ =
    with_causal_sink (fun s ->
        run_bh ~fault:spec ~nbodies:160 ~nnodes:3 ~strip:8 (Some s))
  in
  ignore (check_instances ~what:"bh-faulted" (Causal.results c));
  (* Under heavy drop the path must actually cross retransmissions. *)
  let retrans =
    List.fold_left
      (fun acc i -> acc + seg i.Causal.i_segments "retransmit")
      0 (Causal.results c)
  in
  Alcotest.(check bool) "retransmit bucket charged" true (retrans > 0)

let run_em3d sink =
  let g =
    Dpa_compiler.Em3d.build ~nnodes:3 ~e_per_node:24 ~h_per_node:24 ~degree:4
      ~remote_frac:0.4 ~seed:13
  in
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:3) in
  Dpa_sim.Engine.set_sink engine sink;
  let sum = ref 0. in
  let accum v = sum := !sum +. v in
  ignore
    (Dpa.Runtime.run_phase ~engine ~heaps:g.Dpa_compiler.Em3d.heaps
       ~config:(Dpa.Config.dpa ~strip_size:8 ())
       ~items:(Dpa_compiler.Em3d.items (module Dpa.Runtime) g ~accum));
  !sum

let test_em3d_invariants () =
  let c, _ = with_causal_sink (fun s -> run_em3d (Some s)) in
  ignore (check_instances ~what:"em3d" (Causal.results c))

(* An accumulate-heavy phase for auditing the optimality bound's update
   side: remote accumulations from every strip, so the unique-target count
   has plenty of opportunities to double-count across crash-restarts. *)
let run_accum ?fault sink =
  let nnodes = 4 in
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let counters =
    Array.init 8 (fun i ->
        Dpa_heap.Heap.alloc heaps.(i mod nnodes) ~floats:[| 0.; 0. |]
          ~ptrs:[||])
  in
  let items node =
    Array.init 24 (fun i ->
        fun ctx ->
          Dpa.Runtime.charge ctx 2_000;
          Dpa.Runtime.accumulate ctx
            counters.((node + (3 * i)) mod 8)
            ~idx:(i mod 2) 1.0)
  in
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:nnodes) in
  Dpa_sim.Engine.set_sink engine sink;
  (match fault with
  | Some spec ->
    Dpa_sim.Engine.set_fault engine
      (Some (Dpa_sim.Fault.make ~seed:43 spec ~nodes:nnodes))
  | None -> ());
  ignore
    (Dpa.Runtime.run_phase_labeled ~label:"accum" ~engine ~heaps
       ~config:(Dpa.Config.dpa ~strip_size:6 ())
       ~items)

(* Crash-restart audit of the lower bound (DESIGN.md §14): the bound counts
   each unique remote object once and each unique accumulation target
   once, so a crash schedule — which forces re-fetches and WAL-driven
   re-sends — may only grow the *actual* side of the ratio. Both footprint
   tables use idempotent [replace]; this regression pins that a restart
   never double-counts the bound. *)
let test_opt_bound_stable_across_crashes () =
  let instance c label =
    match
      List.find_opt (fun i -> i.Causal.i_label = label) (Causal.results c)
    with
    | Some i -> (i.Causal.i_opt_actual, i.Causal.i_opt_bound)
    | None -> Alcotest.failf "phase %s missing from causal results" label
  in
  let spec =
    match Dpa_sim.Fault.spec_of_string "heavy,crashes=2" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  (* Read side: BH re-fetches remote cells after each restart. *)
  let c0, _ =
    with_causal_sink (fun s -> run_bh ~nbodies:120 ~nnodes:3 ~strip:8 (Some s))
  in
  let c1, _ =
    with_causal_sink (fun s ->
        run_bh ~fault:spec ~nbodies:120 ~nnodes:3 ~strip:8 (Some s))
  in
  let a0, b0 = instance c0 "bh-force" in
  let a1, b1 = instance c1 "bh-force" in
  Alcotest.(check int) "crash schedule leaves the read bound unchanged" b0 b1;
  Alcotest.(check bool) "re-fetches charge the actual side only" true
    (a1 >= a0 && a0 >= b0);
  (* Update side: WAL re-drive re-sends accumulation batches. *)
  let c2, () = with_causal_sink (fun s -> run_accum (Some s)) in
  let c3, () = with_causal_sink (fun s -> run_accum ~fault:spec (Some s)) in
  let a2, b2 = instance c2 "accum" in
  let a3, b3 = instance c3 "accum" in
  Alcotest.(check int) "crash schedule leaves the update bound unchanged" b2 b3;
  Alcotest.(check bool) "re-sent batches charge the actual side only" true
    (a3 >= a2 && a2 >= b2)

(* Bit-identity: causal tracing must not perturb the simulation — forces
   and the simulated breakdown match an untraced run exactly. *)
let test_causal_run_bit_identical () =
  let base = run_bh ~nbodies:96 ~nnodes:3 ~strip:8 None in
  let _, traced =
    with_causal_sink (fun s -> run_bh ~nbodies:96 ~nnodes:3 ~strip:8 (Some s))
  in
  Alcotest.(check bool) "forces identical" true
    (base.Dpa_bh.Bh_run.accs = traced.Dpa_bh.Bh_run.accs);
  Alcotest.(check bool) "breakdown identical" true
    (base.Dpa_bh.Bh_run.breakdown = traced.Dpa_bh.Bh_run.breakdown)

let suites =
  [
    ( "critpath",
      [
        Alcotest.test_case "fork-join decomposition" `Quick test_fork_join;
        Alcotest.test_case "retransmit chain" `Quick test_retransmit_chain;
        Alcotest.test_case "crash-refetch chain" `Quick test_refetch_chain;
        Alcotest.test_case "acks are path-ineligible" `Quick
          test_ack_not_on_path;
        Alcotest.test_case "unlabeled window discarded" `Quick
          test_unlabeled_window_discarded;
        Alcotest.test_case "span ids stable across windows" `Quick
          test_id_stability_across_windows;
        Alcotest.test_case "optimality ratio" `Quick test_ratio;
        Alcotest.test_case "report json" `Quick test_report_json;
        QCheck_alcotest.to_alcotest qcheck_bh_invariants;
        Alcotest.test_case "bh under heavy faults + crashes" `Quick
          test_bh_faulted_invariants;
        Alcotest.test_case "em3d invariants" `Quick test_em3d_invariants;
        Alcotest.test_case "optimality bound stable across crashes" `Quick
          test_opt_bound_stable_across_crashes;
        Alcotest.test_case "causal run bit-identical" `Quick
          test_causal_run_bit_identical;
      ] );
  ]

(* The adaptive control layer: the Jacobson–Karels round-trip estimator,
   the strip-size controller (clamped ≡ static, bounds respected,
   convergence), the RTT-estimated end-to-end timeout under faults, the
   dedup-table pruning at the phase barrier, and the accounting fixes
   (max_outstanding covers every suspension path; counter tracks survive a
   category filter). *)

open Dpa_sim

(* --- Rtt: the estimator itself ------------------------------------------ *)

let test_rtt_first_sample () =
  let t = Dpa_msg.Rtt.create () in
  Alcotest.(check int) "no samples" 0 (Dpa_msg.Rtt.samples t);
  Alcotest.(check int) "fallback before samples" 777
    (Dpa_msg.Rtt.rto_ns t ~fallback:777);
  Dpa_msg.Rtt.observe t 1000;
  Alcotest.(check int) "srtt = r" 1000 (Dpa_msg.Rtt.srtt_ns t);
  Alcotest.(check int) "rttvar = r/2" 500 (Dpa_msg.Rtt.rttvar_ns t);
  Alcotest.(check int) "estimate = srtt + 4*rttvar" 3000
    (Dpa_msg.Rtt.estimate_ns t);
  Alcotest.(check int) "min recorded" 1000 (Dpa_msg.Rtt.min_ns t)

let test_rtt_converges_on_constant_input () =
  let t = Dpa_msg.Rtt.create () in
  for _ = 1 to 200 do
    Dpa_msg.Rtt.observe t 5000
  done;
  (* Constant input: srtt converges to the input, rttvar decays toward 0,
     so the estimate settles just above the true round trip. *)
  Alcotest.(check int) "srtt converged" 5000 (Dpa_msg.Rtt.srtt_ns t);
  Alcotest.(check bool) "estimate tight" true
    (Dpa_msg.Rtt.estimate_ns t <= 5000 + 16)

let qcheck_rtt_positive_and_floored =
  QCheck.Test.make
    ~name:"rtt: estimates positive, RTO never under the measured floor"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 1 1_000_000))
    (fun samples ->
      let t = Dpa_msg.Rtt.create () in
      List.iter (Dpa_msg.Rtt.observe t) samples;
      let floor = List.fold_left min max_int samples in
      Dpa_msg.Rtt.srtt_ns t > 0
      && Dpa_msg.Rtt.rttvar_ns t >= 0
      && Dpa_msg.Rtt.estimate_ns t > 0
      && Dpa_msg.Rtt.rto_ns t ~fallback:1 >= floor)

let qcheck_rtt_deterministic =
  QCheck.Test.make ~name:"rtt: same samples, same estimates" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 1 100_000))
    (fun samples ->
      let run () =
        let t = Dpa_msg.Rtt.create () in
        List.iter (Dpa_msg.Rtt.observe t) samples;
        (Dpa_msg.Rtt.srtt_ns t, Dpa_msg.Rtt.rttvar_ns t,
         Dpa_msg.Rtt.estimate_ns t)
      in
      run () = run ())

(* --- the strip-size controller ------------------------------------------ *)

(* Run one random phase (test_properties workloads) under a given config,
   returning everything an equivalence check needs. *)
let run_config ?faults ?(fault_seed = 0x5EED) ?sink config spec =
  let nnodes, _, nitems, _ = spec in
  let heaps, item_reads = Test_properties.build_phase spec in
  let sums = Array.make nnodes 0. in
  let items node =
    Array.init nitems (fun item ->
        fun ctx ->
          List.iter
            (fun p ->
              Dpa.Runtime.read ctx p (fun ctx view ->
                  Dpa.Runtime.charge ctx 100;
                  sums.(Dpa.Runtime.node_id ctx) <-
                    sums.(Dpa.Runtime.node_id ctx)
                    +. Dpa_heap.Heap.view_float (Dpa.Runtime.heaps ctx) view 0))
            (item_reads node item))
  in
  let saved = Dpa_obs.Sink.global () in
  Dpa_obs.Sink.set_global sink;
  let engine =
    Fun.protect
      ~finally:(fun () -> Dpa_obs.Sink.set_global saved)
      (fun () -> Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ()))
  in
  let _, stats = Dpa.Runtime.run_phase ~engine ~heaps ~config ~items in
  (sums, stats, Engine.elapsed engine, engine)

let clamped_phase_gen = Test_properties.phase_gen

let qcheck_clamped_auto_is_static =
  QCheck.Test.make
    ~name:"clamped auto (min = max) is bit-identical to the static strip"
    ~count:40 (QCheck.make clamped_phase_gen)
    (fun spec ->
      let s_sums, s_stats, s_elapsed, _ =
        run_config (Dpa.Config.dpa ~strip_size:3 ~agg_max:4 ()) spec
      in
      let a_sums, a_stats, a_elapsed, _ =
        run_config
          (Dpa.Config.dpa_auto ~strip_size:3 ~min_strip:3 ~max_strip:3
             ~agg_max:4 ())
          spec
      in
      s_sums = a_sums && s_stats = a_stats && s_elapsed = a_elapsed)

let steady_phase nnodes =
  (* Every item on every node reads the same three remote objects — the
     steadiest workload there is, so the controller must settle. *)
  let nobjs = 4 in
  let nitems = 400 in
  let reads = List.init (nitems * 3) (fun i -> (i mod nnodes, i mod nobjs)) in
  (nnodes, nobjs, nitems, reads)

let test_auto_within_bounds () =
  let sink = Dpa_obs.Sink.create () in
  let min_strip = 2 and max_strip = 16 in
  let _, stats, _, _ =
    run_config ~sink
      (Dpa.Config.dpa_auto ~strip_size:4 ~min_strip ~max_strip ~d_target:6 ())
      (steady_phase 3)
  in
  let sizes =
    List.filter_map
      (fun (e : Dpa_obs.Sink.event) ->
        if e.Dpa_obs.Sink.kind = Dpa_obs.Sink.Counter
           && e.Dpa_obs.Sink.name = "strip_size"
        then
          match List.assoc_opt "value" e.Dpa_obs.Sink.args with
          | Some (Dpa_obs.Sink.Int v) -> Some v
          | _ -> None
        else None)
      (Dpa_obs.Sink.events sink)
  in
  Alcotest.(check bool) "controller sampled" true (List.length sizes > 0);
  List.iter
    (fun v ->
      if v < min_strip || v > max_strip then
        Alcotest.failf "strip size %d outside [%d, %d]" v min_strip max_strip)
    sizes;
  Alcotest.(check bool) "final within bounds" true
    (stats.Dpa.Dpa_stats.strip_size_final >= min_strip
    && stats.Dpa.Dpa_stats.strip_size_final <= max_strip)

let test_auto_converges () =
  let nnodes = 3 in
  let min_strip = 2 and max_strip = 64 in
  let _, stats, _, _ =
    run_config
      (Dpa.Config.dpa_auto ~strip_size:4 ~min_strip ~max_strip ~d_target:6 ())
      (steady_phase nnodes)
  in
  (* On a steady workload the hysteresis band lets each node ramp to its
     operating point and stay: the resize count is bounded by the ramp
     (log2 of the bound ratio) plus a little settling slack, per node —
     not by the strip count. *)
  let ramp = 6 (* log2 (64/2) + 1 *) in
  let budget = nnodes * (ramp + 4) in
  let resizes =
    stats.Dpa.Dpa_stats.strip_grows + stats.Dpa.Dpa_stats.strip_shrinks
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d resizes within budget %d" resizes budget)
    true
    (resizes <= budget);
  Alcotest.(check bool) "many strips ran" true (stats.Dpa.Dpa_stats.strips > 20)

(* --- adaptive RTO under faults ------------------------------------------ *)

let chaos_spec =
  {
    Fault.none with
    Fault.drop = 0.15;
    dup = 0.05;
    delay = 0.2;
    jitter_ns = 30_000;
    outages = 1;
    outage_ns = 500_000;
    outage_horizon_ns = 5_000_000;
  }

let rto_phase = steady_phase 4

let run_rto ~adaptive =
  let nnodes, _, nitems, _ = rto_phase in
  let heaps, item_reads = Test_properties.build_phase rto_phase in
  let sums = Array.make nnodes 0. in
  let items node =
    Array.init nitems (fun item ->
        fun ctx ->
          List.iter
            (fun p ->
              Dpa.Runtime.read ctx p (fun ctx view ->
                  Dpa.Runtime.charge ctx 100;
                  sums.(Dpa.Runtime.node_id ctx) <-
                    sums.(Dpa.Runtime.node_id ctx)
                    +. Dpa_heap.Heap.view_float (Dpa.Runtime.heaps ctx) view 0))
            (item_reads node item))
  in
  let engine =
    Engine.create
      (Machine.make ~nodes:nnodes ~faults:chaos_spec ~fault_seed:0x5EED
         ~adaptive_rto:adaptive ())
  in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:5 ~agg_max:4 ())
      ~items
  in
  (sums, stats, Engine.elapsed engine, Dpa_msg.Am.stats engine)

let reference_sums () =
  let nnodes, _, nitems, _ = rto_phase in
  let heaps, item_reads = Test_properties.build_phase rto_phase in
  let sums = Array.make nnodes 0. in
  let items node =
    Array.init nitems (fun item ->
        fun ctx ->
          List.iter
            (fun p ->
              Dpa.Runtime.read ctx p (fun ctx view ->
                  Dpa.Runtime.charge ctx 100;
                  sums.(Dpa.Runtime.node_id ctx) <-
                    sums.(Dpa.Runtime.node_id ctx)
                    +. Dpa_heap.Heap.view_float (Dpa.Runtime.heaps ctx) view 0))
            (item_reads node item))
  in
  let engine = Engine.create (Machine.make ~nodes:nnodes ()) in
  ignore
    (Dpa.Runtime.run_phase ~engine ~heaps
       ~config:(Dpa.Config.dpa ~strip_size:5 ~agg_max:4 ())
       ~items);
  sums

let test_adaptive_rto_correct_and_no_worse () =
  let reference = reference_sums () in
  let c_sums, c_stats, _, _ = run_rto ~adaptive:false in
  let a_sums, a_stats, _, _ = run_rto ~adaptive:true in
  Alcotest.(check bool) "constant RTO: fault-free sums" true
    (c_sums = reference);
  Alcotest.(check bool) "adaptive RTO: fault-free sums" true
    (a_sums = reference);
  (* The estimator can only raise the end-to-end timeout above its
     constant floor, so it never re-issues more than the constant wheel. *)
  Alcotest.(check bool)
    (Printf.sprintf "adaptive retries (%d) <= constant retries (%d)"
       a_stats.Dpa.Dpa_stats.rt_retries c_stats.Dpa.Dpa_stats.rt_retries)
    true
    (a_stats.Dpa.Dpa_stats.rt_retries <= c_stats.Dpa.Dpa_stats.rt_retries)

let test_adaptive_rto_deterministic () =
  let r1 = run_rto ~adaptive:true in
  let r2 = run_rto ~adaptive:true in
  Alcotest.(check bool) "same seed, identical run" true (r1 = r2)

let test_e2e_rto_fallback_without_state () =
  let engine = Engine.create (Machine.make ~nodes:2 ()) in
  Alcotest.(check int) "fallback verbatim" 12345
    (Dpa_msg.Am.e2e_rto engine ~fallback:12345);
  Alcotest.(check bool) "no link estimator" true
    (Dpa_msg.Am.link_rtt engine ~src:0 ~dst:1 = None)

(* --- dedup-table pruning at the barrier --------------------------------- *)

let test_prune_seen_at_barrier () =
  let _, _, _, am = run_rto ~adaptive:true in
  match am with
  | None -> Alcotest.fail "expected protocol state under faults"
  | Some s ->
    Alcotest.(check int) "dedup tables empty after the phase barrier" 0
      s.Dpa_msg.Am.seen_entries;
    Alcotest.(check bool) "entries were reclaimed, not never created" true
      (s.Dpa_msg.Am.pruned > 0)

let test_prune_seen_rejects_live_traffic () =
  let engine =
    Engine.create (Machine.make ~nodes:2 ~faults:Fault.none ())
  in
  let src = Engine.node engine 0 in
  Dpa_msg.Am.send engine ~src ~dst:1 ~bytes:64 (fun _ -> ());
  (* The send and its ack are still queued: pruning now would break
     exactly-once. *)
  Alcotest.check_raises "prune refused mid-flight"
    (Invalid_argument "Am.prune_seen: event queue not drained") (fun () ->
      ignore (Dpa_msg.Am.prune_seen engine));
  Engine.run engine;
  let n = Dpa_msg.Am.prune_seen engine in
  Alcotest.(check int) "one entry reclaimed at quiescence" 1 n

(* --- accounting fixes --------------------------------------------------- *)

let test_max_outstanding_counts_local_reads () =
  let nnodes = 1 in
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let ptrs =
    Array.init 8 (fun i ->
        Dpa_heap.Heap.alloc heaps.(0) ~floats:[| float_of_int i |] ~ptrs:[||])
  in
  let items _node =
    [|
      (fun ctx ->
        Array.iter (fun p -> Dpa.Runtime.read ctx p (fun _ _ -> ())) ptrs);
    |]
  in
  let engine = Engine.create (Machine.make ~nodes:nnodes ()) in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:8 ())
      ~items
  in
  (* All eight reads are inline-local and enqueue before the scheduler
     dispatches any of them; the peak must see all eight, not zero (the
     old accounting only sampled the remote-miss path). *)
  Alcotest.(check int) "inline-local reads counted" 8
    stats.Dpa.Dpa_stats.max_outstanding

let test_counter_tracks_survive_category_filter () =
  let s = Dpa_obs.Sink.create () in
  Dpa_obs.Sink.set_categories s (Some [ "phase" ]);
  Dpa_obs.Sink.counter s ~name:"outstanding" ~node:0 ~ts:5 3;
  Dpa_obs.Sink.instant s ~cat:"msg" ~name:"m" ~node:0 ~ts:6;
  Alcotest.(check int) "counter kept despite the filter" 1
    (List.length (Dpa_obs.Sink.events s));
  Alcotest.(check int) "instant still filtered" 1 (Dpa_obs.Sink.filtered s);
  (* spans_only still drops counters: its contract is spans and nothing
     else. *)
  Dpa_obs.Sink.set_spans_only s true;
  Dpa_obs.Sink.counter s ~name:"outstanding" ~node:0 ~ts:7 4;
  Alcotest.(check int) "spans_only drops counters" 2 (Dpa_obs.Sink.filtered s)

let suites =
  [
    ( "adaptive control",
      [
        Alcotest.test_case "rtt first sample (RFC 6298 init)" `Quick
          test_rtt_first_sample;
        Alcotest.test_case "rtt converges on constant input" `Quick
          test_rtt_converges_on_constant_input;
        QCheck_alcotest.to_alcotest qcheck_rtt_positive_and_floored;
        QCheck_alcotest.to_alcotest qcheck_rtt_deterministic;
        QCheck_alcotest.to_alcotest qcheck_clamped_auto_is_static;
        Alcotest.test_case "auto strip stays within bounds" `Quick
          test_auto_within_bounds;
        Alcotest.test_case "auto strip converges on steady workloads" `Quick
          test_auto_converges;
        Alcotest.test_case "adaptive RTO: correct and never more retries"
          `Quick test_adaptive_rto_correct_and_no_worse;
        Alcotest.test_case "adaptive RTO: fixed seed replays identically"
          `Quick test_adaptive_rto_deterministic;
        Alcotest.test_case "e2e RTO falls back without samples" `Quick
          test_e2e_rto_fallback_without_state;
        Alcotest.test_case "dedup tables pruned at the phase barrier" `Quick
          test_prune_seen_at_barrier;
        Alcotest.test_case "prune refuses a non-quiescent engine" `Quick
          test_prune_seen_rejects_live_traffic;
        Alcotest.test_case "max_outstanding counts every suspension" `Quick
          test_max_outstanding_counts_local_reads;
        Alcotest.test_case "counter tracks survive --trace-cats" `Quick
          test_counter_tracks_survive_category_filter;
      ] );
  ]

(* Benchmark harness.

   Part 1 (Bechamel): one Test.make per paper artifact, measuring the
   host-side cost of the kernel that experiment exercises. These are real
   micro-benchmarks of this library (simulator, runtime, math kernels), not
   of the simulated machine.

   Part 2: regenerate every table and figure of the paper at the small
   scale (simulated-machine results; `bin/dpa_bench --scale full` gives the
   paper-scale numbers recorded in EXPERIMENTS.md). *)

open Bechamel
open Toolkit

(* --- kernels ----------------------------------------------------------- *)

(* T2: a complete small Barnes-Hut DPA force phase. *)
let bh_phase () =
  let bodies = Dpa_bh.Plummer.generate ~n:256 ~seed:7 in
  let octree = Dpa_bh.Octree.build bodies in
  let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:4 in
  fun () ->
    let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:4) in
    Sys.opaque_identity
      (Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
         ~params:Dpa_bh.Bh_force.default_params
         (Dpa_baselines.Variant.dpa ~strip_size:25 ()))

(* F1: the same phase under the software-caching baseline. *)
let bh_caching_phase () =
  let bodies = Dpa_bh.Plummer.generate ~n:256 ~seed:7 in
  let octree = Dpa_bh.Octree.build bodies in
  let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:4 in
  fun () ->
    let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:4) in
    Sys.opaque_identity
      (Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
         ~params:Dpa_bh.Bh_force.default_params
         (Dpa_baselines.Variant.Caching { capacity = 512 }))

(* T3: a complete small FMM DPA force phase. *)
let fmm_phase () =
  let params = { Dpa_fmm.Fmm_force.default_params with Dpa_fmm.Fmm_force.p = 8 } in
  fun () ->
    Sys.opaque_identity
      (Dpa_fmm.Fmm_run.run ~params ~nnodes:4 ~nparticles:256 ~seed:7
         (Dpa_baselines.Variant.dpa ~strip_size:25 ()))

(* F2: the 29-term M2L translation, the hot kernel of the FMM phase. *)
let m2l_kernel () =
  let sources = [ (0.7, { Complex.re = 0.1; im = 0.05 }) ] in
  let a = Dpa_fmm.Expansion.p2m ~p:29 ~center:Complex.zero sources in
  let to_center = { Complex.re = 3.0; im = 1.0 } in
  fun () ->
    Sys.opaque_identity
      (Dpa_fmm.Expansion.m2l a ~from_center:Complex.zero ~to_center)

(* F3: the DPA scheduler on a synthetic strip-mined pointer workload. *)
let scheduler_phase () =
  let nnodes = 4 and nobjs = 64 in
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let ptrs =
    Array.init nnodes (fun node ->
        Array.init nobjs (fun slot ->
            Dpa_heap.Heap.alloc heaps.(node)
              ~floats:[| float_of_int slot |]
              ~ptrs:[||]))
  in
  fun () ->
    let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:nnodes) in
    let items node =
      Array.init 32 (fun item ->
          fun ctx ->
            for r = 0 to 7 do
              let h = (node * 7919) + (item * 104729) + (r * 1299721) in
              Dpa.Runtime.read ctx ptrs.(h mod nnodes).((h / 31) mod nobjs)
                (fun ctx _ -> Dpa.Runtime.charge ctx 100)
            done)
    in
    Sys.opaque_identity
      (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items)

(* F4: the discrete-event core — post/pop through the event queue. *)
let event_queue_kernel () =
  fun () ->
    let q = Dpa_sim.Event_queue.create () in
    for i = 0 to 999 do
      Dpa_sim.Event_queue.add q ~time:((i * 7919) land 0xffff) i
    done;
    let rec drain acc =
      match Dpa_sim.Event_queue.pop q with
      | None -> acc
      | Some (_, x) -> drain (acc + x)
    in
    Sys.opaque_identity (drain 0)

(* A1: the request aggregator. *)
let aggregator_kernel () =
  fun () ->
    let sink = ref 0 in
    let agg =
      Dpa_msg.Aggregator.create ~ndest:8 ~max_batch:16 ~flush:(fun ~dst:_ reqs ->
          sink := !sink + List.length reqs)
    in
    for i = 0 to 999 do
      Dpa_msg.Aggregator.add agg ~dst:(i land 7) i
    done;
    Dpa_msg.Aggregator.flush_all agg;
    Sys.opaque_identity !sink

(* A2: the LRU cache of the caching baseline. *)
module Lru = Dpa_util.Lru.Make (Dpa_heap.Gptr.Tbl)

let lru_kernel () =
  fun () ->
    let c = Lru.create ~capacity:128 in
    for i = 0 to 999 do
      let p = Dpa_heap.Gptr.make ~node:0 ~slot:(i land 255) in
      match Lru.find c p with
      | Some _ -> ()
      | None -> Lru.add c p i
    done;
    Sys.opaque_identity (Lru.size c)

(* T1: the partitioning analysis of the mini compiler. *)
let partition_kernel () =
  fun () ->
    Sys.opaque_identity
      ( Dpa_compiler.Partition.total_static_threads Dpa_compiler.Programs.list_sum,
        Dpa_compiler.Partition.total_static_threads Dpa_compiler.Programs.tree_sum,
        Dpa_compiler.Partition.total_static_threads Dpa_compiler.Programs.pair_sum )

(* A5: one EM3D update phase. *)
let em3d_kernel () =
  let g =
    Dpa_compiler.Em3d.build ~nnodes:4 ~e_per_node:16 ~h_per_node:16 ~degree:8
      ~remote_frac:0.25 ~seed:3
  in
  fun () ->
    let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:4) in
    Sys.opaque_identity
      (Dpa.Runtime.run_phase ~engine ~heaps:g.Dpa_compiler.Em3d.heaps
         ~config:(Dpa.Config.dpa ())
         ~items:
           (Dpa_compiler.Em3d.items (module Dpa.Runtime) g ~accum:(fun _ -> ())))

(* A7: the combining update buffer. *)
let update_buffer_kernel () =
  fun () ->
    let sink = ref 0 in
    let b =
      Dpa.Update_buffer.create ~ndest:4 ~combine:true ~max_batch:32
        ~flush:(fun ~dst:_ batch -> sink := !sink + List.length batch)
        ()
    in
    for i = 0 to 999 do
      Dpa.Update_buffer.add b ~dst:(i land 3)
        (Dpa_heap.Gptr.make ~node:0 ~slot:(i land 63))
        ~idx:(i land 7) 1.0
    done;
    Dpa.Update_buffer.flush_all b;
    Sys.opaque_identity !sink

(* A8: the adaptive dual tree walk (sequential kernel). *)
let afmm_kernel () =
  let parts = Dpa_fmm.Particle2d.clustered ~n:256 ~seed:5 ~clusters:3 in
  let tree = Dpa_fmm.Aquadtree.build parts in
  fun () -> Sys.opaque_identity (Dpa_fmm.Afmm_seq.compute ~p:6 tree)

(* A9: the cache model. *)
let dcache_kernel () =
  fun () ->
    let c = Dpa_sim.Dcache.create ~lines:256 () in
    for i = 0 to 4095 do
      ignore (Dpa_sim.Dcache.access c ((i * 7919) land 1023))
    done;
    Sys.opaque_identity (Dpa_sim.Dcache.miss_rate c)

(* timeline: trace recording overhead. *)
let trace_kernel () =
  fun () ->
    let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:2) in
    let trace = Dpa_sim.Trace.attach engine in
    for _ = 1 to 500 do
      Dpa_sim.Node.charge_local (Dpa_sim.Engine.node engine 0) 10;
      Dpa_sim.Node.charge_comm (Dpa_sim.Engine.node engine 1) 10
    done;
    Dpa_sim.Trace.detach trace;
    Sys.opaque_identity (Dpa_sim.Trace.nsegments trace)

let tests =
  [
    Test.make ~name:"t1-partition-analysis" (Staged.stage (partition_kernel ()));
    Test.make ~name:"t2-bh-dpa-phase" (Staged.stage (bh_phase ()));
    Test.make ~name:"t3-fmm-dpa-phase" (Staged.stage (fmm_phase ()));
    Test.make ~name:"f1-bh-caching-phase" (Staged.stage (bh_caching_phase ()));
    Test.make ~name:"f2-m2l-p29" (Staged.stage (m2l_kernel ()));
    Test.make ~name:"f3-dpa-scheduler" (Staged.stage (scheduler_phase ()));
    Test.make ~name:"f4-event-queue-1k" (Staged.stage (event_queue_kernel ()));
    Test.make ~name:"a1-aggregator-1k" (Staged.stage (aggregator_kernel ()));
    Test.make ~name:"a2-lru-1k" (Staged.stage (lru_kernel ()));
    Test.make ~name:"a5-em3d-phase" (Staged.stage (em3d_kernel ()));
    Test.make ~name:"a7-update-buffer-1k" (Staged.stage (update_buffer_kernel ()));
    Test.make ~name:"a8-adaptive-walk" (Staged.stage (afmm_kernel ()));
    Test.make ~name:"a9-dcache-4k" (Staged.stage (dcache_kernel ()));
    Test.make ~name:"timeline-trace-1k" (Staged.stage (trace_kernel ()));
  ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  print_endline "Bechamel micro-benchmarks (host time per kernel run):";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-24s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-24s (no estimate)\n" name)
        results)
    tests;
  print_newline ()

(* --- table/figure regeneration ---------------------------------------- *)

let run_experiments () =
  let conf = Dpa_harness.Runconf.small in
  print_endline
    "Regenerating the paper's tables and figures (small scale; use `dune \
     exec bin/dpa_bench.exe -- all --scale full` for paper scale):";
  print_newline ();
  Dpa_harness.Experiment.print_thread_stats
    (Dpa_harness.Experiment.thread_stats conf);
  let bh = Dpa_harness.Experiment.bh_times conf in
  Dpa_harness.Experiment.print_times
    ~title:"T2: Barnes-Hut force-phase times (small scale)" bh;
  let fmm = Dpa_harness.Experiment.fmm_times conf in
  Dpa_harness.Experiment.print_times
    ~title:"T3: FMM force-phase times (small scale)" fmm;
  Dpa_harness.Experiment.print_breakdown ~title:"F1: Barnes-Hut breakdown"
    (Dpa_harness.Experiment.bh_breakdown conf);
  Dpa_harness.Experiment.print_breakdown ~title:"F2: FMM breakdown"
    (Dpa_harness.Experiment.fmm_breakdown conf);
  Dpa_harness.Experiment.print_strip_sweep
    (Dpa_harness.Experiment.strip_sweep conf);
  Dpa_harness.Experiment.print_speedups
    (Dpa_harness.Experiment.speedups ~bh ~fmm);
  Dpa_harness.Experiment.print_agg_sweep (Dpa_harness.Experiment.agg_sweep conf);
  let dpa_ref =
    List.find
      (fun (t : Dpa_harness.Experiment.timing) ->
        t.Dpa_harness.Experiment.procs
        = conf.Dpa_harness.Runconf.breakdown_procs)
      bh
  in
  Dpa_harness.Experiment.print_cache_sweep
    ~dpa_time_s:dpa_ref.Dpa_harness.Experiment.dpa_s
    (Dpa_harness.Experiment.cache_sweep conf);
  Dpa_harness.Experiment.print_distribution_sweep
    (Dpa_harness.Experiment.distribution_sweep conf);
  Dpa_harness.Experiment.print_partition_sweep
    (Dpa_harness.Experiment.partition_sweep conf);
  Dpa_harness.Experiment.print_em3d_sweep
    (Dpa_harness.Experiment.em3d_sweep conf);
  Dpa_harness.Experiment.print_latency_sweep
    (Dpa_harness.Experiment.latency_sweep conf);
  Dpa_harness.Experiment.print_upward_sweep
    (Dpa_harness.Experiment.upward_sweep conf);
  Dpa_harness.Experiment.print_afmm_sweep
    (Dpa_harness.Experiment.afmm_sweep conf);
  Dpa_harness.Experiment.print_cache_locality
    (Dpa_harness.Experiment.cache_locality conf);
  Dpa_harness.Experiment.print_hotspot (Dpa_harness.Experiment.hotspot conf)

(* --- entry point ------------------------------------------------------- *)

(* Optional observability: `--trace FILE`, `--metrics FILE` and `--profile`
   install a global sink around the experiment pass (micro-benchmarks are
   excluded so the exports only cover one run of each experiment). *)
let () =
  let trace = ref None and metrics = ref None and profile = ref false in
  Arg.parse
    [
      ( "--trace",
        Arg.String (fun p -> trace := Some p),
        "FILE Write a Chrome trace_event JSON of the experiment pass" );
      ( "--metrics",
        Arg.String (fun p -> metrics := Some p),
        "FILE Write a JSON metrics dump of the experiment pass" );
      ( "--profile",
        Arg.Set profile,
        " Print a per-phase profile after the experiment pass" );
    ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench/main.exe [--trace FILE] [--metrics FILE] [--profile]";
  let observing = !trace <> None || !metrics <> None || !profile in
  if not observing then begin
    run_bechamel ();
    run_experiments ()
  end
  else begin
    (* Open output files before the long run so a bad path fails fast. *)
    let open_or_die path =
      try (path, open_out path)
      with Sys_error e ->
        prerr_endline ("bench: " ^ e);
        exit 1
    in
    let trace_out = Option.map open_or_die !trace in
    let metrics_out = Option.map open_or_die !metrics in
    run_bechamel ();
    let sink = Dpa_obs.Sink.create () in
    Dpa_obs.Sink.set_global (Some sink);
    Fun.protect
      ~finally:(fun () -> Dpa_obs.Sink.set_global None)
      run_experiments;
    let finish what render = function
      | None -> ()
      | Some (path, oc) ->
        output_string oc (render ());
        close_out oc;
        Printf.printf "wrote %s to %s\n" what path
    in
    finish "Chrome trace" (fun () -> Dpa_obs.Export.chrome_trace sink) trace_out;
    finish "metrics"
      (fun () -> Dpa_obs.Json.to_string (Dpa_obs.Export.metrics_json sink))
      metrics_out;
    if !profile then print_string (Dpa_obs.Export.profile sink)
  end
